(** Cooperative wall-clock deadlines and cancellation.

    A [Deadline.t] is both a timeout and a cancellation token: long-running
    loops call {!check} at their batch boundaries (executor plan nodes,
    MCTS iterations, pool task pickup) and abandon work by raising
    {!Expired} once the wall clock passes the deadline or someone called
    {!cancel}. The token is domain-safe — the harness can cancel a cell
    from outside while worker domains poll it.

    {!none} never expires and is the default everywhere; checking it costs
    one pointer comparison (the Null-sink pattern), so instrumented hot
    paths pay nothing when no deadline is set. *)

exception Expired

type t

val none : t
(** Never expires, cannot be cancelled ({!cancel} on it is ignored). *)

val after : float -> t
(** [after seconds] expires that many seconds from now (monotonic clock). *)

val cancel : t -> unit
(** Trip the token: every subsequent {!check} raises. Idempotent. *)

val is_none : t -> bool

val expired : t -> bool
(** True once past the deadline or cancelled. Always false for {!none}. *)

val check : t -> unit
(** @raise Expired when {!expired}. *)

val remaining : t -> float
(** Seconds left ([infinity] for {!none}, [0.] once expired). *)
