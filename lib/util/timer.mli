(** Wall-clock timing helpers for the harness and the Monsoon driver's
    component breakdown (paper Table 8). *)

val now : unit -> float
(** Monotonic seconds (CLOCK_MONOTONIC; arbitrary epoch). Differences are
    always ≥ 0 regardless of wall-clock adjustments. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result together with elapsed seconds. *)

type accum
(** A mutable accumulator of elapsed time across many sections. *)

val accum : unit -> accum
val add_to : accum -> (unit -> 'a) -> 'a
(** Runs the thunk, adding its elapsed time to the accumulator. *)

val total : accum -> float
val reset : accum -> unit
