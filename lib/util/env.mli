(** The execution environment: one record for the cross-cutting concerns
    every engine entry point used to take as separate optional arguments.

    An [Env.t] bundles the telemetry context, the fault-injection plan and
    the cooperative deadline that accompany a unit of work. {!default} is
    the all-Null-sinks environment — disabled faults, no deadline, a null
    telemetry slot — and preserves the one-branch-when-off guarantee of
    each component: passing {!default} costs exactly what passing nothing
    used to.

    The telemetry slot is an extensible variant because this library sits
    below [Monsoon_telemetry] in the dependency order: the telemetry layer
    registers its own [ctx] constructor and provides the packing functions
    ([Ctx.to_env] / [Ctx.of_env]). Future capabilities (a statistics
    repository, a spill budget) extend the record without touching any
    call site. *)

type ctx = ..
(** Extension point for the telemetry context (see
    [Monsoon_telemetry.Ctx.to_env]). *)

type ctx += Null_ctx
(** The empty slot; consumers treat it as a fresh Null-sink context. *)

type profile = ..
(** Extension point for the per-plan-node execution profile collector
    (see [Monsoon_exec.Profile.to_env]); an extensible variant for the
    same reason as {!ctx} — the collector's type lives above this
    library in the dependency order. *)

type profile += No_profile
(** The empty slot; consumers treat it as profiling disabled. *)

type repo = ..
(** Extension point for the cross-query statistics repository (see
    [Monsoon_stats_repo.Stats_repo.to_env]); extensible for the same
    dependency-order reason as {!ctx}. *)

type repo += No_repo
(** The empty slot; consumers treat it as no repository attached — all
    warm-start lookups miss and nothing is flushed at query end. *)

type t = {
  ctx : ctx;
  fault : Fault.t;
  deadline : Deadline.t;
  profile : profile;
  repo : repo;
}

val default : t
(** [Null_ctx] + {!Fault.disabled} + {!Deadline.none} + {!No_profile}
    + {!No_repo}. *)

val with_ctx : t -> ctx -> t
val with_fault : t -> Fault.t -> t
val with_deadline : t -> Deadline.t -> t
val with_profile : t -> profile -> t
val with_repo : t -> repo -> t

val ctx : t -> ctx
val fault : t -> Fault.t
val deadline : t -> Deadline.t
val profile : t -> profile
val repo : t -> repo
