(** Deterministic, seedable fault injection.

    Monsoon plans under opaque, untrusted code; this module makes that code
    (and the machinery around it) misbehave on purpose. A {!spec} names the
    fault classes and their probabilities; {!plan} arms a plan by pairing a
    spec with its own RNG stream. Producers (the executor, the worker pool)
    consult the plan at well-defined checkpoints — a UDF evaluation, a
    scanned row, a hash-join build — and each firing checkpoint raises
    {!Injected}.

    Determinism contract: a plan draws only from its private RNG, one draw
    per checkpoint whose rate is positive, so the same spec + RNG seed
    fires at exactly the same checkpoints on every run, independent of
    wall-clock and of how many domains the harness uses. Deriving the RNG
    from a {e copy} of the per-cell stream (see
    [Monsoon_harness.Runner]) keeps the planner/executor streams
    untouched: a rate-0 plan is byte-identical to no plan at all.

    Following the telemetry layer's Null-sink pattern, {!disabled} is the
    default everywhere and costs a single pointer comparison per
    checkpoint. *)

exception Injected of string
(** Raised by a firing checkpoint; the payload names the fault class
    ("udf", "row", "build"). *)

type spec = {
  udf_rate : float;  (** probability a UDF evaluation raises *)
  row_rate : float;  (** probability a scanned base row is poisoned *)
  build_rate : float;  (** probability a hash-join build fails outright *)
  worker_kills : int;
      (** pool workers to kill (and respawn) over the run — consumed by
          [Pool.inject_kills], not by per-checkpoint draws *)
}

val no_faults : spec
(** All rates 0, no kills. *)

val spec_of_string : string -> (spec, string) result
(** Parse a CLI fault spec: comma-separated [class:value] pairs, e.g.
    ["udf:0.05,worker:1"]. Classes: [udf], [row], [build] (rates in
    [0,1]) and [worker] (a non-negative kill count). Unlisted classes
    stay at {!no_faults}. *)

val spec_to_string : spec -> string
(** Canonical round-trippable rendering (every class listed). *)

type t
(** A fault plan: {!disabled}, or a spec armed with a private RNG. *)

val disabled : t
(** The no-op plan: every checkpoint is a single branch. *)

val armed : t -> bool

val plan : spec -> Rng.t -> t
(** [plan spec rng] arms [spec] over the given stream. The plan owns
    [rng]; hand it a fresh split, never a stream someone else draws
    from. *)

val udf : t -> unit
(** UDF-evaluation checkpoint.
    @raise Injected with probability [udf_rate]. *)

val row : t -> unit
(** Scanned-row checkpoint.
    @raise Injected with probability [row_rate]. *)

val build : t -> unit
(** Hash-join-build checkpoint.
    @raise Injected with probability [build_rate]. *)

val injected : t -> int
(** Checkpoints fired so far (0 for {!disabled}). *)

val worker_kills : t -> int
(** The spec's kill budget (0 for {!disabled}). *)
