(** A fixed-size pool of worker domains.

    [create n] spawns [n] worker domains that block on a shared task queue
    (Mutex/Condition); {!map} and {!iter} fan a list of items out across
    them and wait for every item to settle. The pool is reusable: many
    [map]/[iter] calls can share one pool, and {!with_pool} scopes
    creation/shutdown around a single computation.

    Exceptions raised by a task are caught on the worker, and the first one
    (by item index) is re-raised on the submitting domain — with its
    backtrace — after all items of that call have settled, so a failing
    [map] never leaves stray tasks running. The pool itself stays usable
    after a failed call.

    Restrictions: tasks must not themselves call [map]/[iter] on the same
    pool (the submitter's items could then starve behind their own
    children), and a pool must be shut down from the domain structure that
    created it. These are the only sharp edges; everything else —
    submitting from several domains, empty item lists, [shutdown] twice —
    is safe. *)

type t

val create : int -> t
(** [create n] spawns [n] worker domains ([n ≥ 1]).
    @raise Invalid_argument when [n < 1]. *)

val size : t -> int
(** Number of worker domains. *)

type stats = { queued : int; in_flight : int; completed : int }

val stats : t -> stats
(** A consistent-enough live view of the pool, backed by the same atomics
    a monitor scrapes: [queued] tasks not yet picked up, [in_flight] tasks
    running on a worker right now, [completed] tasks that settled (normally
    or by exception) since the pool was created. The three counters are
    read independently, so a task mid-handoff may be momentarily counted in
    neither [queued] nor [in_flight]; once every submitted task settles,
    [queued = 0], [in_flight = 0] and [completed] equals the number of
    submissions. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves to. *)

val inject_kills : t -> int -> unit
(** [inject_kills pool n] queues [n] kill tokens for the fault plane. Each
    token makes one worker exit between tasks (never mid-task) after
    spawning its own replacement, so capacity is conserved and no queued
    task is orphaned. Tokens outnumbering live workers linger and kill
    future dequeues. @raise Invalid_argument when [n < 0]. *)

val respawned : t -> int
(** Workers killed-and-replaced since the pool was created. *)

val run : t -> (unit -> 'a) -> 'a
(** [run pool f] executes the single task [f] on one of the pool's workers
    and blocks the calling thread until it settles, returning its result or
    re-raising its exception (with backtrace). This is the serving layer's
    unit of admission: an admitted request borrows exactly one worker
    domain for the duration of its query, so a pool of [n] workers bounds
    execution concurrency at [n] no matter how many threads submit.
    @raise Invalid_argument when the pool was shut down. *)

val map : ?cancel:Deadline.t -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element on the pool's workers and
    returns the results in input order. Blocks until all items settle; if
    any task raised, re-raises the first failure (by input position).

    When [cancel] trips (deadline passed, or [Deadline.cancel]), items not
    yet started fail immediately with [Deadline.Expired] instead of running
    [f] — so an abandoned call settles fast and the pool stays usable.
    In-flight items still run to completion (cooperative cancellation).
    @raise Invalid_argument when the pool was shut down. *)

val iter : ?cancel:Deadline.t -> t -> ('a -> unit) -> 'a list -> unit
(** [map] for effects. *)

val shutdown : t -> unit
(** Graceful shutdown: lets queued tasks drain, then joins every worker.
    Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] over a fresh [n]-worker pool and shuts it down
    afterwards, whether [f] returns or raises. *)
