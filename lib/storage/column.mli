(** Typed columnar views of row data.

    A column is the vertical slice of one attribute, unboxed where the
    declared type allows: ints, dates and bools in a Bigarray int vector,
    floats in a float64 vector, strings dictionary-encoded. Columns that
    cannot be unboxed (Nulls, values disagreeing with the schema) fall back
    to the boxed [Value.t] array — still a column, just without the
    vectorized fast paths.

    {!of_values} is the single row→column materialization path shared by
    {!Table}'s cached accessors and the executor's gather-once views of
    materialized intermediates. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type int_kind = KInt | KDate | KBool

type t =
  | Ints of { kind : int_kind; data : ints }
  | Floats of floats
  | Dict of { codes : ints; dict : Value.t array; strs : string array }
      (** [dict] holds the distinct boxed values in first-appearance order;
          [strs] the same entries unwrapped. Decoding reuses the boxed
          values, so gathering a dict column back into rows allocates
          nothing. *)
  | Boxed of Value.t array

val of_values : Value.ty -> Value.t array -> t
(** Materialize one column from boxed values against its declared type.
    Any disagreeing value demotes the whole column to [Boxed]. *)

val length : t -> int

val get : t -> int -> Value.t
(** Decoded (boxed) value at an index. Allocates for [Ints]/[Floats]. *)

val value_hash : t -> int -> int64
(** [Value.hash] of [get t i], computed without boxing. *)

val ints_of_array : int array -> ints
