type row = Value.t array

type t = {
  name : string;
  schema : Schema.t;
  mutable rows : row array;
  mutable len : int;
  (* Columnar views, materialized on first access and invalidated by
     [append]. Indexed by schema slot. *)
  mutable cols : Column.t option array;
}

let create ~name schema =
  { name; schema; rows = [||]; len = 0;
    cols = Array.make (Schema.arity schema) None }

let of_row_array ~name schema rows =
  { name; schema; rows; len = Array.length rows;
    cols = Array.make (Schema.arity schema) None }

let of_rows ~name schema rows = of_row_array ~name schema (Array.of_list rows)

let name t = t.name
let schema t = t.schema
let cardinality t = t.len

let rows t =
  if t.len = Array.length t.rows then t.rows else Array.sub t.rows 0 t.len

let append t row =
  Array.fill t.cols 0 (Array.length t.cols) None;
  let cap = Array.length t.rows in
  if t.len = cap then begin
    let ncap = max 16 (cap * 2) in
    let nrows = Array.make ncap row in
    Array.blit t.rows 0 nrows 0 t.len;
    t.rows <- nrows
  end;
  t.rows.(t.len) <- row;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Table.get";
  t.rows.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.rows.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.rows.(i)
  done;
  !acc

let column_values t col =
  let idx = Schema.index_of (schema t) col in
  Array.init t.len (fun i -> t.rows.(i).(idx))

(* Typed column views, cached per slot. All accessors share one
   materialization path ([Column.of_values] over the declared type). *)
let column_at t idx =
  match t.cols.(idx) with
  | Some c -> c
  | None ->
    let ty = (Schema.columns t.schema).(idx).Schema.ty in
    let vs = Array.init t.len (fun i -> t.rows.(i).(idx)) in
    let c = Column.of_values ty vs in
    t.cols.(idx) <- Some c;
    c

let column t col = column_at t (Schema.index_of (schema t) col)

let prime_columns t =
  for i = 0 to Schema.arity t.schema - 1 do
    ignore (column_at t i)
  done

let int_column t col =
  match column t col with
  | Column.Ints { kind = Column.KInt; data } -> Some data
  | _ -> None

let float_column t col =
  match column t col with Column.Floats data -> Some data | _ -> None

let string_dict_column t col =
  match column t col with
  | Column.Dict { codes; strs; _ } -> Some (codes, strs)
  | _ -> None

let distinct_exact t col =
  let idx = Schema.index_of (schema t) col in
  let seen = Hashtbl.create 1024 in
  for i = 0 to t.len - 1 do
    Hashtbl.replace seen t.rows.(i).(idx) ()
  done;
  Hashtbl.length seen
