open Monsoon_util

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type int_kind = KInt | KDate | KBool

type t =
  | Ints of { kind : int_kind; data : ints }
  | Floats of floats
  | Dict of { codes : ints; dict : Value.t array; strs : string array }
  | Boxed of Value.t array

let length = function
  | Ints { data; _ } -> Bigarray.Array1.dim data
  | Floats data -> Bigarray.Array1.dim data
  | Dict { codes; _ } -> Bigarray.Array1.dim codes
  | Boxed vs -> Array.length vs

let ints_of_array (a : int array) : ints =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set b i v) a;
  b

(* The one row→column materialization path: unbox against the declared
   type, falling back to [Boxed] the moment any value disagrees (a Null, a
   mixed column). Fallback columns stay usable — consumers that need the
   typed representation simply don't take their vectorized fast path. *)
let of_values (ty : Value.ty) (vs : Value.t array) : t =
  let n = Array.length vs in
  let exception Fallback in
  try
    match ty with
    | Value.TInt | Value.TDate | Value.TBool ->
      let data = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
      let kind =
        match ty with
        | Value.TInt -> KInt
        | Value.TDate -> KDate
        | _ -> KBool
      in
      for i = 0 to n - 1 do
        match kind, vs.(i) with
        | KInt, Value.Int x | KDate, Value.Date x ->
          Bigarray.Array1.unsafe_set data i x
        | KBool, Value.Bool b ->
          Bigarray.Array1.unsafe_set data i (if b then 1 else 0)
        | _ -> raise Fallback
      done;
      Ints { kind; data }
    | Value.TFloat ->
      let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
      for i = 0 to n - 1 do
        match vs.(i) with
        | Value.Float f -> Bigarray.Array1.unsafe_set data i f
        | _ -> raise Fallback
      done;
      Floats data
    | Value.TStr ->
      (* Dictionary-encode, preserving first-appearance order and reusing
         the already-boxed values so decoding allocates nothing. *)
      let codes = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
      let seen = Hashtbl.create 64 in
      let dict = ref [] in
      let n_dict = ref 0 in
      for i = 0 to n - 1 do
        match vs.(i) with
        | Value.Str s as v ->
          let code =
            match Hashtbl.find_opt seen s with
            | Some c -> c
            | None ->
              let c = !n_dict in
              Hashtbl.add seen s c;
              dict := v :: !dict;
              incr n_dict;
              c
          in
          Bigarray.Array1.unsafe_set codes i code
        | _ -> raise Fallback
      done;
      let dict = Array.of_list (List.rev !dict) in
      let strs =
        Array.map (function Value.Str s -> s | _ -> assert false) dict
      in
      Dict { codes; dict; strs }
  with Fallback -> Boxed vs

let get t i =
  match t with
  | Ints { kind = KInt; data } -> Value.Int (Bigarray.Array1.get data i)
  | Ints { kind = KDate; data } -> Value.Date (Bigarray.Array1.get data i)
  | Ints { kind = KBool; data } -> Value.Bool (Bigarray.Array1.get data i <> 0)
  | Floats data -> Value.Float (Bigarray.Array1.get data i)
  | Dict { codes; dict; _ } -> dict.(Bigarray.Array1.get codes i)
  | Boxed vs -> vs.(i)

(* Per-element hash, bit-identical to [Value.hash] of the decoded value —
   Σ passes feed these straight into HyperLogLog registers. *)
let value_hash t i =
  match t with
  | Ints { kind = KInt; data } ->
    Hashing.combine 1L (Hashing.int (Bigarray.Array1.unsafe_get data i))
  | Ints { kind = KDate; data } ->
    Hashing.combine 4L (Hashing.int (Bigarray.Array1.unsafe_get data i))
  | Ints { kind = KBool; data } ->
    Hashing.int (if Bigarray.Array1.unsafe_get data i <> 0 then 3 else 5)
  | Floats data ->
    Hashing.combine 2L
      (Hashing.mix (Int64.bits_of_float (Bigarray.Array1.unsafe_get data i)))
  | Dict { codes; dict; _ } ->
    Value.hash dict.(Bigarray.Array1.unsafe_get codes i)
  | Boxed vs -> Value.hash vs.(i)
