(** In-memory row-store tables.

    Rows are immutable-by-convention value arrays matching the schema. The
    executor treats tables as materialized relations; base tables and
    materialized intermediates share this representation. *)

type row = Value.t array
type t

val create : name:string -> Schema.t -> t
val of_rows : name:string -> Schema.t -> row list -> t
val of_row_array : name:string -> Schema.t -> row array -> t

val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int
val rows : t -> row array
(** The backing array — do not mutate. *)

val append : t -> row -> unit
val get : t -> int -> row
val iter : (row -> unit) -> t -> unit
val fold : ('a -> row -> 'a) -> 'a -> t -> 'a

val column_values : t -> string -> Value.t array
(** All values of one column, in row order. *)

val column : t -> string -> Column.t
(** Typed columnar view of one column, materialized through the shared
    {!Column.of_values} path on first access and cached until the next
    {!append}. *)

val column_at : t -> int -> Column.t
(** {!column} by schema slot. *)

val prime_columns : t -> unit
(** Materialize every column eagerly (through the same shared path the
    lazy accessors use). Workload generators call this once after filling
    a table, so query execution never pays first-touch gathering. *)

val int_column : t -> string -> Column.ints option
(** The unboxed int vector of an int-typed column, or [None] when the
    column demoted to a boxed fallback (Nulls, schema disagreement). *)

val float_column : t -> string -> Column.floats option

val string_dict_column : t -> string -> (Column.ints * string array) option
(** Dictionary codes plus the decoded dictionary, in code order. *)

val distinct_exact : t -> string -> int
(** Exact distinct count of a column (test/baseline oracle). *)
